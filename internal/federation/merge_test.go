package federation

import (
	"math"
	"testing"

	"p4p/internal/core"
	"p4p/internal/topology"
)

// mkview builds a shard view literal for merge tests.
func mkview(version int, pids []topology.PID, d [][]float64) *core.View {
	return &core.View{PIDs: pids, D: d, Version: version}
}

func viewA() *core.View {
	return mkview(3, []topology.PID{0, 1}, [][]float64{{0, 2}, {2, 0}})
}

func viewB() *core.View {
	return mkview(5, []topology.PID{10, 11}, [][]float64{{0, 4}, {4, 0}})
}

func TestMergeSameShardCopiesThrough(t *testing.T) {
	v, err := Merge([]ShardView{{"a", viewA()}, {"b", viewB()}},
		[]Circuit{{A: "a", APID: 1, B: "b", BPID: 10, Cost: 7}})
	if err != nil {
		t.Fatal(err)
	}
	wantPIDs := []topology.PID{0, 1, 10, 11}
	if len(v.PIDs) != len(wantPIDs) {
		t.Fatalf("merged PIDs = %v, want %v", v.PIDs, wantPIDs)
	}
	for i, p := range wantPIDs {
		if v.PIDs[i] != p {
			t.Fatalf("merged PIDs = %v, want %v (ascending union)", v.PIDs, wantPIDs)
		}
	}
	if v.Version != 8 {
		t.Errorf("merged Version = %d, want 3+5=8", v.Version)
	}
	// Intradomain entries are the owning shard's, untouched.
	if got := v.Distance(0, 1); got != 2 {
		t.Errorf("intra-shard d(0,1) = %v, want 2", got)
	}
	if got := v.Distance(11, 10); got != 4 {
		t.Errorf("intra-shard d(11,10) = %v, want 4", got)
	}
}

func TestMergeComposesCrossShardViaGateways(t *testing.T) {
	v, err := Merge([]ShardView{{"a", viewA()}, {"b", viewB()}},
		[]Circuit{{A: "a", APID: 1, B: "b", BPID: 10, Cost: 7}})
	if err != nil {
		t.Fatal(err)
	}
	// src→gateway + circuit + gateway'→dst, both directions.
	cases := []struct {
		src, dst topology.PID
		want     float64
	}{
		{0, 10, 2 + 7 + 0},
		{0, 11, 2 + 7 + 4},
		{1, 10, 0 + 7 + 0},
		{10, 0, 0 + 7 + 2},
		{11, 1, 4 + 7 + 0},
	}
	for _, c := range cases {
		if got := v.Distance(c.src, c.dst); got != c.want {
			t.Errorf("d(%d,%d) = %v, want %v", c.src, c.dst, got, c.want)
		}
	}
}

func TestMergeMultihomingTakesCheapestCircuit(t *testing.T) {
	// Second parallel circuit a:0-b:11 at cost 1: every cross pair must
	// take whichever gateway path is cheaper — the Figure 10 multihoming
	// behavior, generalized.
	v, err := Merge([]ShardView{{"a", viewA()}, {"b", viewB()}},
		[]Circuit{
			{A: "a", APID: 1, B: "b", BPID: 10, Cost: 7},
			{A: "a", APID: 0, B: "b", BPID: 11, Cost: 1},
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Distance(0, 11); got != 1 {
		t.Errorf("d(0,11) = %v, want 1 (direct cheap circuit)", got)
	}
	if got := v.Distance(0, 10); got != 5 {
		t.Errorf("d(0,10) = %v, want 5 (cheap circuit + b intradomain)", got)
	}
	// 1→11 can hairpin inside a to the cheap gateway: 2 + 1 + 0 = 3,
	// beating the direct 7+4 = 11.
	if got := v.Distance(1, 11); got != 3 {
		t.Errorf("d(1,11) = %v, want 3 (hairpin to cheaper gateway)", got)
	}
}

func TestMergeTransitsIntermediateShard(t *testing.T) {
	viewC := mkview(1, []topology.PID{20, 21}, [][]float64{{0, 4}, {4, 0}})
	v, err := Merge(
		[]ShardView{{"a", viewA()}, {"b", viewB()}, {"c", viewC}},
		[]Circuit{
			{A: "a", APID: 1, B: "b", BPID: 10, Cost: 1},
			{A: "b", APID: 11, B: "c", BPID: 20, Cost: 1},
		})
	if err != nil {
		t.Fatal(err)
	}
	// a→c has no direct circuit: compose through b's intradomain
	// gateway-to-gateway distance. 0→1 (2) + circuit (1) + 10→11 in b
	// (4) + circuit (1) + 20→21 in c (4) = 12.
	if got := v.Distance(0, 21); got != 12 {
		t.Errorf("d(0,21) = %v, want 12 (transit through shard b)", got)
	}
}

func TestMergeDownShardDropsItsCircuits(t *testing.T) {
	viewC := mkview(1, []topology.PID{20, 21}, [][]float64{{0, 4}, {4, 0}})
	// Shard b is down (absent from the shard list): its circuits are
	// skipped, a and c keep serving, and a↔c is unreachable.
	v, err := Merge(
		[]ShardView{{"a", viewA()}, {"c", viewC}},
		[]Circuit{
			{A: "a", APID: 1, B: "b", BPID: 10, Cost: 1},
			{A: "b", APID: 11, B: "c", BPID: 20, Cost: 1},
		})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Distance(0, 1); got != 2 {
		t.Errorf("intra-shard d(0,1) = %v, want 2", got)
	}
	if got := v.Distance(0, 20); !math.IsInf(got, 1) {
		t.Errorf("d(0,20) = %v, want +Inf with shard b down", got)
	}
	// A nil view behaves like an absent shard.
	v2, err := Merge(
		[]ShardView{{"a", viewA()}, {"b", nil}, {"c", viewC}},
		[]Circuit{{A: "a", APID: 1, B: "b", BPID: 10, Cost: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := v2.Distance(0, 20); !math.IsInf(got, 1) {
		t.Errorf("d(0,20) = %v, want +Inf with nil shard view", got)
	}
}

func TestMergeSkipsCircuitWithUnknownGatewayPID(t *testing.T) {
	// Gateway PID 9 is not in shard a's view: the circuit cannot carry
	// traffic and is skipped rather than panicking in composition.
	v, err := Merge([]ShardView{{"a", viewA()}, {"b", viewB()}},
		[]Circuit{{A: "a", APID: 9, B: "b", BPID: 10, Cost: 1}})
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Distance(0, 10); !math.IsInf(got, 1) {
		t.Errorf("d(0,10) = %v, want +Inf (only circuit unusable)", got)
	}
}

func TestMergeDuplicatePIDFails(t *testing.T) {
	dup := mkview(1, []topology.PID{1, 10}, [][]float64{{0, 1}, {1, 0}})
	if _, err := Merge([]ShardView{{"a", viewA()}, {"b", dup}}, nil); err == nil {
		t.Fatal("want error for PID served by two shards")
	}
}

func TestMergeRejectsInvalidCircuitCost(t *testing.T) {
	for _, cost := range []float64{-1, math.NaN()} {
		if _, err := Merge([]ShardView{{"a", viewA()}, {"b", viewB()}},
			[]Circuit{{A: "a", APID: 1, B: "b", BPID: 10, Cost: cost}}); err == nil {
			t.Errorf("want error for circuit cost %v", cost)
		}
	}
}

func TestMergeNoCircuitsCrossShardUnreachable(t *testing.T) {
	v, err := Merge([]ShardView{{"a", viewA()}, {"b", viewB()}}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if got := v.Distance(1, 10); !math.IsInf(got, 1) {
		t.Errorf("d(1,10) = %v, want +Inf with no circuits", got)
	}
}

func TestParseCircuit(t *testing.T) {
	c, err := ParseCircuit("east:3,west:7,2.5")
	if err != nil {
		t.Fatal(err)
	}
	want := Circuit{A: "east", APID: 3, B: "west", BPID: 7, Cost: 2.5}
	if c != want {
		t.Errorf("ParseCircuit = %+v, want %+v", c, want)
	}
	// Shard names may contain colons (URL-derived): the PID is after
	// the last one.
	c, err = ParseCircuit("http://e:8080:4,http://w:9090:7,1")
	if err != nil {
		t.Fatal(err)
	}
	if c.A != "http://e:8080" || c.APID != 4 || c.B != "http://w:9090" || c.BPID != 7 {
		t.Errorf("URL-named circuit parsed as %+v", c)
	}
	for _, bad := range []string{"", "a:1,b:2", "a:1,b:2,x", "a:1,b:2,-1", "a,b:2,1", "a:x,b:2,1"} {
		if _, err := ParseCircuit(bad); err == nil {
			t.Errorf("ParseCircuit(%q): want error", bad)
		}
	}
}
