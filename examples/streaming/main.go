// Streaming example: the Liveswarms integration (Figure 9). A source
// streams a live video into a swarm; native random peering is compared
// with P4P peering on per-link backbone traffic, with goodput held.
package main

import (
	"fmt"

	"p4p/internal/apptracker"
	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/p2psim"
	"p4p/internal/topology"
)

func main() {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)

	fmt.Printf("%-8s %18s %16s\n", "policy", "avg backbone MB", "goodput kbps")
	for _, policy := range []string{"native", "p4p"} {
		cfg := p2psim.Config{
			Graph:      g,
			Routing:    r,
			Seed:       5,
			PieceBytes: 64 << 10,
			MaxTime:    300,
			Streaming: &p2psim.StreamingConfig{
				RateBps:    400e3,
				ContentSec: 90 * 60,
				WindowSec:  60,
			},
		}
		if policy == "native" {
			cfg.Selector = apptracker.Random{}
		} else {
			engine := core.NewEngine(g, r, core.Config{Objective: core.MinimizeMLU, StepSize: 0.2})
			tr := itracker.New(itracker.Config{Name: g.Name, ASN: 11537}, engine, nil)
			cfg.Selector = &apptracker.P4P{Views: trackerViews{tr}}
			cfg.MeasureInterval = 10
			cfg.OnMeasure = func(now float64, rates []float64) { tr.ObserveAndUpdate(rates) }
		}
		sim := p2psim.New(cfg)
		pids := g.AggregationPIDs()
		// The streaming source.
		sim.AddClient(p2psim.ClientSpec{PID: pids[0], ASN: 11537, UpBps: 20e6, DownBps: 20e6, IsSeed: true})
		const viewers = 53
		for i := 0; i < viewers; i++ {
			sim.AddClient(p2psim.ClientSpec{
				PID:     pids[(i*3)%len(pids)],
				ASN:     11537,
				UpBps:   4e6,
				DownBps: 4e6,
				JoinAt:  float64(i),
			})
		}
		res := sim.Run()
		var backbone float64
		for _, v := range res.LinkBytes {
			backbone += v
		}
		avgMB := backbone / float64(g.NumLinks()) / (1 << 20)
		goodput := res.TotalBytes * 8 / viewers / res.Duration / 1e3
		fmt.Printf("%-8s %18.2f %16.1f\n", policy, avgMB, goodput)
	}
	fmt.Println("\nP4P keeps throughput while cutting backbone volume (Figure 9).")
}

type trackerViews struct{ tr *itracker.Server }

func (v trackerViews) ViewFor(asn int) apptracker.DistanceView {
	view, err := v.tr.Distances("")
	if err != nil {
		return nil
	}
	return view
}
