// Quickstart: build a topology, run a p-distance engine, serve it
// through an iTracker, and make a P4P peer-selection decision — the
// smallest end-to-end tour of the library.
package main

import (
	"fmt"
	"math/rand"

	"p4p/internal/apptracker"
	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/topology"
)

func main() {
	// 1. The provider's internal view: the Abilene backbone.
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	fmt.Printf("topology %s: %d PIDs, %d links\n", g.Name, g.NumNodes(), g.NumLinks())

	// 2. The p-distance engine with the MLU objective (Section 5).
	engine := core.NewEngine(g, r, core.Config{Objective: core.MinimizeMLU, StepSize: 0.2})

	// 3. Feed it a traffic observation: hammer the DC -> NY link.
	dc, _ := g.FindNode("WashingtonDC")
	ny, _ := g.FindNode("NewYork")
	hot, _ := g.FindLink(dc, ny)
	loads := make([]float64, g.NumLinks())
	loads[hot] = 8e9 // 8 Gbps of P2P traffic on a 10 Gbps link
	for i := 0; i < 20; i++ {
		engine.ObserveTraffic(loads)
		engine.Update()
	}

	// 4. The iTracker portal wraps the engine with the paper's three
	// interfaces; applications see only the external view.
	tr := itracker.New(itracker.Config{Name: g.Name, ASN: 11537}, engine, itracker.SyntheticPIDMap(g))
	view, err := tr.Distances("")
	if err != nil {
		panic(err)
	}
	fmt.Printf("\np-distances from WashingtonDC (PID %d):\n", dc)
	for _, pid := range view.Ranks(dc) {
		fmt.Printf("  -> %-14s %.3g\n", g.Node(pid).Name, view.Distance(dc, pid))
	}

	// 5. A P4P appTracker turns the view into peer choices.
	sel := &apptracker.P4P{Views: views{tr}}
	var candidates []apptracker.Node
	for i, pid := range g.AggregationPIDs() {
		for k := 0; k < 5; k++ {
			candidates = append(candidates, apptracker.Node{ID: i*10 + k + 1, PID: pid, ASN: 11537})
		}
	}
	self := apptracker.Node{ID: 0, PID: dc, ASN: 11537}
	picks := sel.Select(self, candidates, 10, rand.New(rand.NewSource(1)))
	fmt.Println("\nselected peers for a WashingtonDC client:")
	counts := map[string]int{}
	for _, idx := range picks {
		counts[g.Node(candidates[idx].PID).Name]++
	}
	for name, c := range counts {
		fmt.Printf("  %-14s x%d\n", name, c)
	}
	fmt.Println("\nnote: the priced DC<->NY direction pushes selection away from NewYork.")
}

type views struct{ tr *itracker.Server }

func (v views) ViewFor(asn int) apptracker.DistanceView {
	view, err := v.tr.Distances("")
	if err != nil {
		return nil
	}
	return view
}
