// Interdomain example: percentile charging and virtual capacities.
//
// A provider's interdomain link is billed at the 95th percentile of its
// 5-minute volumes. The example generates a month of diurnal background
// traffic, predicts the charging volume with the paper's hybrid window,
// derives the virtual capacity v_e available to P4P traffic, and shows
// the dual price of the link reacting as P4P traffic exceeds or
// respects v_e.
package main

import (
	"fmt"

	"p4p/internal/charging"
	"p4p/internal/core"
	"p4p/internal/topology"
	"p4p/internal/traffic"
)

func main() {
	// A month of synthetic diurnal volume history on the link.
	model := charging.StandardMonthly()
	cfg := traffic.DefaultConfig(2e9) // 2 Gbps mean background
	history := traffic.Generate(cfg, model.PeriodIntervals)

	charge := charging.Percentile(history, model.Q)
	fmt.Printf("95th-percentile charging volume: %.1f GB per 5-min interval\n", charge/1e9)
	fmt.Printf("billing index: interval %d of %d\n", model.BillingIndex(), model.PeriodIntervals)

	est := &charging.VirtualCapacityEstimator{
		Predictor: charging.Predictor{Model: model, WarmupIntervals: 288},
		Average:   charging.MovingAverage{Window: 12},
	}
	ve := est.Estimate(history)
	veBps := ve * 8 / cfg.IntervalSec
	fmt.Printf("virtual capacity v_e for P4P traffic: %.0f Mbps\n", veBps/1e6)

	// Price dynamics on a two-ISP topology: the engine raises the
	// interdomain price when observed P4P traffic exceeds v_e and decays
	// it when there is headroom (eq. 16).
	g := topology.AbileneVirtualISPs()
	r := topology.ComputeRouting(g)
	engine := core.NewEngine(g, r, core.Config{StepSize: 0.5})
	cut := topology.InterdomainCuts(g)[0]
	link := cut[0]
	engine.SetVirtualCapacity(link, veBps)

	fmt.Println("\nP4P traffic vs v_e and the resulting dual price:")
	loads := make([]float64, g.NumLinks())
	for _, factor := range []float64{2.0, 2.0, 2.0, 0.5, 0.5, 0.5, 0.5} {
		loads[link] = factor * veBps
		engine.ObserveTraffic(loads)
		engine.Update()
		fmt.Printf("  traffic %.1fx v_e -> price %.3f\n", factor, engine.Price(link))
	}
	fmt.Println("\nrising price makes PID pairs crossing the link unattractive;")
	fmt.Println("headroom lets the price decay so spare v_e is still used.")
}
