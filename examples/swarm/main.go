// Swarm example: the Figure 6 setting in miniature. Three BitTorrent
// swarms — native (random peering), delay-localized, and P4P with an
// iTracker protecting the congested Washington DC <-> New York circuit —
// share a file over the Abilene backbone, and the example prints the
// completion times and the protected circuit's traffic for each.
package main

import (
	"fmt"
	"math/rand"

	"p4p/internal/apptracker"
	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/p2psim"
	"p4p/internal/topology"
)

const (
	numClients = 80
	fileBytes  = 8 << 20
)

func main() {
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	dc, _ := g.FindNode("WashingtonDC")
	ny, _ := g.FindNode("NewYork")
	fwd, _ := g.FindLink(dc, ny)
	rev, _ := g.FindLink(ny, dc)

	fmt.Printf("%-10s %12s %12s %14s\n", "policy", "mean s", "p95 s", "DC<->NY MB")
	for _, policy := range []string{"native", "localized", "p4p"} {
		res := runPolicy(policy, g, r, fwd, rev)
		ct := res.CompletionTimes()
		mean := res.MeanCompletionTime()
		p95 := ct[len(ct)*95/100-1]
		mb := (res.LinkBytes[fwd] + res.LinkBytes[rev]) / (1 << 20)
		fmt.Printf("%-10s %12.1f %12.1f %14.1f\n", policy, mean, p95, mb)
	}
}

func runPolicy(policy string, g *topology.Graph, r *topology.Routing, fwd, rev topology.LinkID) *p2psim.Result {
	cfg := p2psim.Config{
		Graph:            g,
		Routing:          r,
		Seed:             7,
		FileBytes:        fileBytes,
		TCPWindowBytes:   32 << 10,
		ReselectInterval: 20,
	}
	switch policy {
	case "native":
		cfg.Selector = apptracker.Random{}
	case "localized":
		cfg.Selector = &apptracker.Localized{Delay: func(a, b apptracker.Node) float64 {
			return r.PropagationDelaySeconds(a.PID, b.PID)
		}}
	case "p4p":
		// An MLU iTracker in the loop: the simulator reports measured
		// link rates every 10 s; prices steer subsequent selection.
		engine := core.NewEngine(g, r, core.Config{Objective: core.MinimizeMLU, StepSize: 0.3})
		tr := itracker.New(itracker.Config{Name: g.Name, ASN: 11537}, engine, nil)
		cfg.Selector = &apptracker.P4P{Views: trackerViews{tr}}
		cfg.MeasureInterval = 10
		cfg.OnMeasure = func(now float64, rates []float64) { tr.ObserveAndUpdate(rates) }
	}
	sim := p2psim.New(cfg)
	pids := g.AggregationPIDs()
	sim.AddClient(p2psim.ClientSpec{PID: pids[0], ASN: 11537, UpBps: 5e6, DownBps: 5e6, IsSeed: true})
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < numClients; i++ {
		sim.AddClient(p2psim.ClientSpec{
			PID:     pids[rng.Intn(len(pids))],
			ASN:     11537,
			UpBps:   20e6,
			DownBps: 20e6,
			JoinAt:  float64(i),
		})
	}
	return sim.Run()
}

type trackerViews struct{ tr *itracker.Server }

func (v trackerViews) ViewFor(asn int) apptracker.DistanceView {
	view, err := v.tr.Distances("")
	if err != nil {
		return nil
	}
	return view
}
