// Portal example: the full HTTP control plane end to end. An iTracker
// portal serves the paper's interfaces on a loopback listener; a portal
// client (the appTracker side) discovers it, resolves a client's PID
// from its IP, fetches policy and p-distances, and makes a selection.
package main

import (
	"fmt"
	"log"
	"net"
	"net/http"

	"p4p/internal/apptracker"
	"p4p/internal/core"
	"p4p/internal/itracker"
	"p4p/internal/portal"
	"p4p/internal/topology"

	"math/rand"
)

func main() {
	// Provider side: engine + iTracker + HTTP portal.
	g := topology.Abilene()
	r := topology.ComputeRouting(g)
	engine := core.NewEngine(g, r, core.Config{Objective: core.MinimizeBDP})
	tr := itracker.New(itracker.Config{
		Name: g.Name,
		ASN:  11537,
		Policy: itracker.Policy{
			NearCongestionUtil: 0.7,
			HeavyUsageUtil:     0.9,
		},
		Capabilities: []itracker.Capability{
			{Kind: "cache", PID: 3, CapacityBps: 10e9},
		},
	}, engine, itracker.SyntheticPIDMap(g))

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	srv := &http.Server{Handler: portal.NewHandler(tr)}
	//p4pvet:ignore goroleak demo server; Serve returns when the deferred srv.Close tears down the listener
	go func() {
		if err := srv.Serve(ln); err != http.ErrServerClosed {
			log.Fatal(err)
		}
	}()
	defer srv.Close()
	baseURL := "http://" + ln.Addr().String()

	// Discovery shim: domain -> portal URL (stands in for DNS SRV).
	registry := portal.Registry{"abilene.example": baseURL}
	url, err := registry.Discover("abilene.example")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("discovered portal:", url)

	// Application side.
	client := portal.NewClient(url, "")

	// 1. Where am I? (IP -> PID mapping)
	me, err := client.LookupPID(itracker.SyntheticIP(9, 42)) // a WashingtonDC address
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("client PID %d in AS %d\n", me.PID, me.ASN)

	// 2. Network policy.
	pol, err := client.Policy()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("policy: near-congestion at %.0f%%, heavy usage at %.0f%%\n",
		pol.NearCongestionUtil*100, pol.HeavyUsageUtil*100)

	// 3. Capabilities.
	caps, err := client.Capabilities("cache")
	if err != nil {
		log.Fatal(err)
	}
	for _, c := range caps {
		fmt.Printf("capability: %s at PID %d (%.0f Gbps)\n", c.Kind, c.PID, c.CapacityBps/1e9)
	}

	// 4. Distances, then a peer-selection decision.
	view, err := client.Distances()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("p-distance view covers %d PIDs (version %d)\n", len(view.PIDs), view.Version)

	sel := &apptracker.P4P{Views: staticViews{view}}
	var candidates []apptracker.Node
	for i, pid := range view.PIDs {
		candidates = append(candidates, apptracker.Node{ID: i + 1, PID: pid, ASN: me.ASN})
	}
	self := apptracker.Node{ID: 0, PID: me.PID, ASN: me.ASN}
	picks := sel.Select(self, candidates, 5, rand.New(rand.NewSource(1)))
	fmt.Print("selected peer PIDs:")
	for _, idx := range picks {
		fmt.Printf(" %d", candidates[idx].PID)
	}
	fmt.Println()
}

type staticViews struct{ v *core.View }

func (s staticViews) ViewFor(asn int) apptracker.DistanceView { return s.v }
